"""Performance observatory: taxonomy, tax table, flamegraph sampling.

The observatory's promises are (a) every callback lands in a stable
event class with >= 95 % coverage on real workloads, (b) the
flamegraph sampler is driven by the deterministic event counter -- two
identical seeded runs sample the same events and emit the same
collapsed stacks (only the wall-time weights differ), and (c) the
whole thing rides the existing profiler hook without touching the
protocol (zero-perturbation is proven in test_perf_disabled.py).
"""

import pytest

from repro.harness.runner import run_transfer
from repro.obs import Observability
from repro.obs.perf import (EVENT_CLASSES, PerfObservatory, classify,
                            register_site)
from repro.obs.perf.taxonomy import infer, timer_class
from repro.sim.engine import Simulator
from repro.sim.timer import Timer
from repro.workloads.scenarios import build_lan


def _profiled_run(sample_every=16, alloc=False, nbytes=200_000):
    perf = PerfObservatory(sample_every=sample_every, alloc=alloc)
    obs = Observability(perf=perf)
    sc = build_lan(3, 100e6, seed=7)
    res = run_transfer(sc, nbytes=nbytes, sndbuf=128 * 1024,
                       max_sim_s=120, obs=obs)
    assert res.ok
    return perf, res


# -- taxonomy ----------------------------------------------------------


def test_register_site_rejects_unknown_class():
    with pytest.raises(ValueError, match="unknown event class"):
        register_site(lambda: None, "warp-drive")


def test_register_site_classifies_plain_function():
    def my_callback():
        pass
    register_site(my_callback, "fleet-harness")
    assert classify(my_callback) == "fleet-harness"


def test_timer_event_class_is_layer_one():
    sim = Simulator()
    t = Timer(sim, lambda: None, name="whatever", event_class="nic-tx")
    assert classify(t._fire) == "nic-tx"


def test_timer_name_fallback_memoizes():
    sim = Simulator()
    t = Timer(sim, lambda: None, name="nak")
    assert t.event_class == ""
    assert classify(t._fire) == "nak-repair-timer"
    # classify memoized the class onto the instance (layer-1 next time)
    assert t.event_class == "nak-repair-timer"


def test_timer_class_names():
    assert timer_class("transmit") == "jiffy-timer"
    assert timer_class("retrans") == "nak-repair-timer"
    assert timer_class("tcp-rto") == "nak-repair-timer"
    # unknown timer names degrade to the periodic-tick class
    assert timer_class("mystery") == "jiffy-timer"


def test_infer_rules():
    assert infer("repro.net.nic", "NetworkInterface._tx_done") == "nic-tx"
    assert infer("repro.net.link", "Pipe.deliver") == "link"
    assert infer("repro.sim.process", "Process._resume") == "app"
    assert infer("repro.obs.metrics", "Registry.scrape") == "fleet-harness"
    assert infer("some.third.party", "Thing.cb") == "other"


# -- tax table on a real run ------------------------------------------


def test_tax_table_coverage_meets_bar():
    perf, res = _profiled_run(sample_every=0)
    assert perf.profiler.events == res.sim_events
    # the acceptance bar: >= 95 % of callbacks placed in a named class
    assert perf.coverage() >= 0.95
    rows = perf.tax_rows()
    classes = [r[0] for r in rows]
    assert set(classes) <= set(EVENT_CLASSES)
    # the LAN transfer exercises the full stack
    for expected in ("jiffy-timer", "nic-tx", "nic-rx", "link", "app"):
        assert expected in classes
    # events add up to the engine's count
    assert sum(r[1] for r in rows) == res.sim_events


def test_tax_table_rows_in_taxonomy_order():
    perf, _ = _profiled_run(sample_every=0)
    order = {c: i for i, c in enumerate(EVENT_CLASSES)}
    positions = [order[r[0]] for r in perf.tax_rows()]
    assert positions == sorted(positions)


def test_bench_payload_shape():
    perf, res = _profiled_run(sample_every=32)
    payload = perf.bench_payload()
    assert payload["events"] == res.sim_events
    assert payload["coverage"] >= 0.95
    assert payload["flame_samples"] > 0
    assert payload["flame_stacks"] > 0
    for name, block in payload["classes"].items():
        assert name in EVENT_CLASSES
        assert block["events"] > 0


# -- deterministic flamegraph sampling --------------------------------


def test_sampler_counts_and_stacks_deterministic():
    perf_a, res_a = _profiled_run(sample_every=16)
    perf_b, res_b = _profiled_run(sample_every=16)
    # identical runs: identical event streams, so identical samples
    assert res_a.sim_events == res_b.sim_events
    assert perf_a.sampler.samples == perf_b.sampler.samples
    # and identical collapsed stacks -- the *keys* are deterministic
    # (weights are wall time and may differ between executions)
    stacks_a = [line.rsplit(" ", 1)[0] for line in perf_a.collapsed_lines()]
    stacks_b = [line.rsplit(" ", 1)[0] for line in perf_b.collapsed_lines()]
    assert stacks_a == stacks_b


def test_sampler_immune_to_foreign_gc_callbacks():
    """A process-wide gc.callbacks entry (hypothesis registers one) must
    never leak its frames into the sampled stack keys: GC cycles land at
    wall-clock-dependent points, so one run would record the callback's
    frames where the other doesn't.  The sampler defers automatic GC for
    the duration of each sample."""
    import gc

    def nosy_gc_callback(phase, info):
        pass

    thresholds = gc.get_threshold()
    gc.callbacks.append(nosy_gc_callback)
    gc.set_threshold(1)          # collect (and fire callbacks) constantly
    try:
        perf_a, _ = _profiled_run(sample_every=16)
        perf_b, _ = _profiled_run(sample_every=16)
    finally:
        gc.callbacks.remove(nosy_gc_callback)
        gc.set_threshold(*thresholds)
    for key in list(perf_a.sampler.stacks) + list(perf_b.sampler.stacks):
        assert not any("nosy_gc_callback" in label for label in key), key
    stacks_a = [ln.rsplit(" ", 1)[0] for ln in perf_a.collapsed_lines()]
    stacks_b = [ln.rsplit(" ", 1)[0] for ln in perf_b.collapsed_lines()]
    assert stacks_a == stacks_b
    assert gc.isenabled()        # the sampler restored GC afterwards


def test_collapsed_lines_format():
    perf, _ = _profiled_run(sample_every=16)
    lines = perf.collapsed_lines()
    assert lines
    for line in lines:
        stack, weight = line.rsplit(" ", 1)
        assert stack.startswith("engine;")
        assert int(weight) >= 1
    # sorted output: stable diffs between runs
    assert lines == sorted(lines)


def test_sample_every_zero_disables_sampling():
    perf, _ = _profiled_run(sample_every=0)
    assert perf.sampler is None
    assert perf.collapsed_lines() == []
    assert perf.flame_svg() == ""
    with pytest.raises(RuntimeError, match="disabled"):
        perf.write_collapsed("/dev/null")


def test_flame_svg_renders(tmp_path):
    perf, _ = _profiled_run(sample_every=16)
    svg = perf.flame_svg()
    assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
    assert "engine" in svg
    out = tmp_path / "lan.collapsed.txt"
    perf.write_collapsed(out)
    assert out.read_text().splitlines() == perf.collapsed_lines()


# -- allocation tracking ----------------------------------------------


def test_alloc_tracker_phases_and_growth():
    perf, _ = _profiled_run(alloc=True)
    alloc = perf.alloc
    assert alloc is not None
    phases = [r[0] for r in alloc.phase_rows()]
    assert "transfer" in phases
    # the run allocates *something*; growth sites are attributed
    assert alloc.growth_rows()
    tables = dict((t[0], t[2]) for t in perf.summary_tables())
    assert "heap by phase" in tables
    assert "top allocation growth" in tables


def test_summary_tables_without_alloc():
    perf, _ = _profiled_run(sample_every=0)
    tables = perf.summary_tables()
    assert len(tables) == 1
    title, headers, rows = tables[0]
    assert title.startswith("event-class tax table")
    assert "coverage" in title
    assert headers[0] == "class"
    assert rows
