"""Unit tests for payload descriptors."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.payload import (BytesPayload, PatternPayload, pattern_bytes)


def test_bytes_payload_roundtrip():
    p = BytesPayload(b"hello world")
    assert p.length == 11
    assert p.tobytes() == b"hello world"
    assert len(p) == 11


def test_bytes_payload_slice():
    p = BytesPayload(b"hello world")
    assert p.slice(6, 5).tobytes() == b"world"
    assert p.slice(0, 0).tobytes() == b""


def test_bytes_payload_bad_slice():
    p = BytesPayload(b"abc")
    with pytest.raises(ValueError):
        p.slice(1, 5)
    with pytest.raises(ValueError):
        p.slice(-1, 1)


def test_pattern_payload_matches_pattern_bytes():
    p = PatternPayload(1000, 64)
    assert p.tobytes() == pattern_bytes(1000, 64)
    assert p.length == 64


def test_pattern_slice_equals_bytes_slice():
    p = PatternPayload(5000, 1000)
    raw = p.tobytes()
    sl = p.slice(100, 300)
    assert sl.tobytes() == raw[100:400]


def test_pattern_wraps_period():
    big = pattern_bytes(0, 65536 * 2 + 100)
    assert big[:65536] == big[65536:131072]
    assert pattern_bytes(65530, 20) == big[65530:65550]


def test_pattern_empty():
    assert pattern_bytes(10, 0) == b""
    assert PatternPayload(10, 0).tobytes() == b""


def test_pattern_negative_rejected():
    with pytest.raises(ValueError):
        PatternPayload(-1, 5)
    with pytest.raises(ValueError):
        PatternPayload(0, 5).slice(0, 9)


@given(st.integers(0, 10**9), st.integers(0, 4096))
def test_pattern_consistency_property(offset, length):
    """pattern_bytes(o, n) must equal concatenating two half reads."""
    whole = pattern_bytes(offset, length)
    half = length // 2
    assert whole == pattern_bytes(offset, half) + pattern_bytes(
        offset + half, length - half)


@given(st.binary(max_size=512), st.data())
def test_bytes_slice_property(data, draw):
    p = BytesPayload(data)
    start = draw.draw(st.integers(0, len(data)))
    length = draw.draw(st.integers(0, len(data) - start))
    assert p.slice(start, length).tobytes() == data[start:start + length]
