"""Unit tests for sk_buffs and queues."""

from repro.kernel.payload import BytesPayload
from repro.kernel.skbuff import SKBuff, SkbQueue, SKB_OVERHEAD


def mkskb(seq=0, length=100, ptype=0):
    return SKBuff(sport=1, dport=2, seq=seq, ptype=ptype, length=length,
                  payload=BytesPayload(b"x" * length))


def test_skb_fields():
    skb = SKBuff(sport=7, dport=9, seq=1000, ptype=3, length=50,
                 rate_adv=125_000, flags=0x1, tries=2)
    assert skb.end_seq == 1050
    assert skb.truesize == 50 + SKB_OVERHEAD
    assert skb.rate_adv == 125_000


def test_seq_masks_to_32_bits():
    skb = SKBuff(sport=1, dport=2, seq=2**32 + 5, ptype=0, length=10)
    assert skb.seq == 5
    skb2 = SKBuff(sport=1, dport=2, seq=2**32 - 4, ptype=0, length=10)
    assert skb2.end_seq == 6  # wraps


def test_queue_accounting():
    q = SkbQueue()
    assert len(q) == 0 and not q
    q.enqueue(mkskb(length=100))
    q.enqueue(mkskb(length=200))
    assert len(q) == 2
    assert q.data_bytes == 300
    assert q.bytes == 300 + 2 * SKB_OVERHEAD
    skb = q.dequeue()
    assert skb.length == 100
    assert q.data_bytes == 200
    assert q.bytes == 200 + SKB_OVERHEAD


def test_queue_fifo_and_peek():
    q = SkbQueue()
    a, b = mkskb(seq=1), mkskb(seq=2)
    q.enqueue(a)
    q.enqueue(b)
    assert q.peek() is a
    assert q.peek_tail() is b
    assert q.dequeue() is a
    assert q.dequeue() is b
    assert q.dequeue() is None
    assert q.peek() is None


def test_requeue_front():
    q = SkbQueue()
    a, b = mkskb(seq=1), mkskb(seq=2)
    q.enqueue(b)
    q.requeue_front(a)
    assert q.peek() is a
    assert q.bytes == a.truesize + b.truesize


def test_clear_resets_accounting():
    q = SkbQueue()
    q.enqueue(mkskb())
    q.clear()
    assert len(q) == 0
    assert q.bytes == 0
    assert q.data_bytes == 0


def test_queue_iteration_order():
    q = SkbQueue()
    for seq in (10, 20, 30):
        q.enqueue(mkskb(seq=seq))
    assert [s.seq for s in q] == [10, 20, 30]
