"""Unit tests for the host model (CPU serialization, dispatch)."""

from repro.kernel.host import CostModel, Host, Transport
from repro.kernel.skbuff import SKBuff
from repro.net.topology import EthernetLanTopology
from repro.sim.engine import Simulator
from repro.sim.process import Process


def make_pair(bandwidth=100e6, cost=None):
    sim = Simulator()
    lan = EthernetLanTopology(sim, bandwidth)
    h1 = Host(sim, lan, lan.make_nic("10.0.0.1"), cost=cost)
    h2 = Host(sim, lan, lan.make_nic("10.0.0.2"), cost=cost)
    return sim, lan, h1, h2


class Catcher(Transport):
    def __init__(self):
        self.got = []

    def segment_received(self, skb, src_addr):
        self.got.append((skb, src_addr))


def mkskb(dport=5000, length=1000):
    return SKBuff(sport=4000, dport=dport, seq=0, ptype=0, length=length)


def test_cost_model_formulas():
    c = CostModel()
    assert c.proto_cost(1480) == round(10 + 0.025 * 1480)
    assert c.rx_cost(1480) == 150 + round(10 + 0.025 * 1480)
    assert c.tx_cost(100) == round(10 + 0.025 * 100)
    assert c.copy_cost(0) == 10


def test_end_to_end_segment_dispatch():
    sim, lan, h1, h2 = make_pair()
    catcher = Catcher()
    h2.bind(5000, catcher)
    h1.ip_send(mkskb(), h2.addr)
    sim.run()
    assert len(catcher.got) == 1
    skb, src = catcher.got[0]
    assert src == h1.addr
    assert skb.length == 1000


def test_unbound_port_counts_unroutable():
    sim, lan, h1, h2 = make_pair()
    h1.ip_send(mkskb(dport=9), h2.addr)
    sim.run()
    assert h2.unroutable == 1


def test_bind_conflict_rejected():
    sim, lan, h1, _ = make_pair()
    h1.bind(5000, Catcher())
    try:
        h1.bind(5000, Catcher())
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError")


def test_unbind_releases_port():
    sim, lan, h1, _ = make_pair()
    c = Catcher()
    h1.bind(5000, c)
    h1.unbind(5000)
    h1.bind(5000, Catcher())  # no conflict after unbind


def test_cpu_serializes_work():
    sim, lan, h1, _ = make_pair()
    done = []
    h1.cpu_run(100, lambda: done.append(sim.now))
    h1.cpu_run(100, lambda: done.append(sim.now))
    sim.run()
    assert done == [100, 200]


def test_cpu_exec_in_process():
    sim, lan, h1, _ = make_pair()
    marks = []

    def app():
        yield from h1.cpu_exec(500)
        marks.append(sim.now)

    Process(sim, app())
    sim.run()
    assert marks == [500]


def test_rx_processing_charges_cpu():
    """Receiving N packets should occupy the receiver CPU serially."""
    sim, lan, h1, h2 = make_pair()
    catcher = Catcher()
    h2.bind(5000, catcher)
    n = 5
    for _ in range(n):
        h1.ip_send(mkskb(length=1000), h2.addr)
    sim.run()
    assert len(catcher.got) == n
    # receiver CPU must have been busy at least n serialized rx costs
    # (packets arrive spaced by wire time, so compare against the cost
    # alone, not wall-clock contiguity)
    assert h2.cost.rx_cost(1020) > 0
    assert h2.cpu_busy_until >= h2.cost.rx_cost(1020)
    assert catcher.got[-1][0].length == 1000


def test_multicast_send_reaches_joined_host():
    sim, lan, h1, h2 = make_pair()
    catcher = Catcher()
    h2.bind(5000, catcher)
    h2.join_group("224.1.0.1")
    h1.ip_send(mkskb(), "224.1.0.1")
    sim.run()
    assert len(catcher.got) == 1


def test_tx_burst_beyond_ring_counts_drops():
    sim, lan, h1, h2 = make_pair()
    h2.bind(5000, Catcher())
    # a zero-cost model makes all sends land on the ring instantly
    for _ in range(h1.nic.tx_ring_cap + 10):
        h1.nic.try_transmit  # noqa: B018 - touch to document intent
    # push more than the ring through ip_send with zero tx cost
    zero = CostModel(per_packet_us=0, per_byte_us=0, lower_layer_us=0)
    sim2 = Simulator()
    lan2 = EthernetLanTopology(sim2, 10e6)
    a = Host(sim2, lan2, lan2.make_nic("10.0.0.1"), cost=zero)
    b = Host(sim2, lan2, lan2.make_nic("10.0.0.2"), cost=zero)
    b.bind(5000, Catcher())
    for _ in range(a.nic.tx_ring_cap + 10):
        a.ip_send(mkskb(), b.addr)
    sim2.run()
    assert a.tx_ring_busy_drops == 10
