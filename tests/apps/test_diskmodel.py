"""Unit tests for the disk model."""

import pytest

from repro.apps.diskmodel import DiskModel
from repro.sim.engine import Simulator
from repro.sim.process import Process


def run_io(disk, op, sizes):
    sim = disk.sim
    times = []

    def proc():
        for n in sizes:
            before = sim.now
            yield from (disk.read(n) if op == "read" else disk.write(n))
            times.append(sim.now - before)

    Process(sim, proc())
    sim.run()
    return times


def test_read_takes_time():
    sim = Simulator()
    disk = DiskModel(sim, hiccup_prob=0.0)
    times = run_io(disk, "read", [64 * 1024])
    expected = disk.per_op_us + round(64 * 1024 * 8 * 1e6 /
                                      disk.bandwidth_bps)
    assert times == [expected]
    assert disk.bytes_read == 64 * 1024


def test_write_accounting():
    sim = Simulator()
    disk = DiskModel(sim, hiccup_prob=0.0)
    run_io(disk, "write", [1000, 2000])
    assert disk.bytes_written == 3000
    assert disk.ops == 2


def test_larger_ops_take_longer():
    sim = Simulator()
    disk = DiskModel(sim, hiccup_prob=0.0)
    t = run_io(disk, "read", [10_000, 100_000])
    assert t[1] > t[0]


def test_hiccups_add_delay():
    sim = Simulator()
    steady = DiskModel(sim, hiccup_prob=0.0)
    jittery = DiskModel(sim, hiccup_prob=1.0, seed=1)
    t1 = run_io(steady, "read", [1000])
    sim2 = Simulator()
    jittery = DiskModel(sim2, hiccup_prob=1.0, seed=1)
    t2 = run_io(jittery, "read", [1000])
    assert t2[0] == t1[0] + jittery.hiccup_us
    assert jittery.hiccups == 1


def test_deterministic_per_seed():
    def trace(seed):
        sim = Simulator()
        disk = DiskModel(sim, hiccup_prob=0.3, seed=seed)
        return run_io(disk, "read", [4096] * 30)

    assert trace(5) == trace(5)
    assert trace(5) != trace(6)


def test_invalid_bandwidth_rejected():
    with pytest.raises(ValueError):
        DiskModel(Simulator(), bandwidth_bps=0)
