"""Tests for the file-transfer application processes."""

from repro.apps.filetransfer import AppResult, receiver_app, sender_app
from repro.core.config import HRMCConfig
from repro.core.protocol import open_hrmc_socket
from repro.sim.process import Process
from repro.workloads.scenarios import build_lan


def run_apps(nbytes, *, disk=False, verify="offsets", n=2):
    sc = build_lan(n, 10e6, seed=21)
    cfg = HRMCConfig(expected_receivers=n).with_rate_cap(10e6)
    ssock = open_hrmc_socket(sc.sender, cfg, sndbuf=128 * 1024)
    rsocks = [open_hrmc_socket(h, cfg, rcvbuf=128 * 1024)
              for h in sc.receivers]
    sres = AppResult(name="s")
    rres = [AppResult(name=f"r{i}") for i in range(n)]
    disks = {}
    if disk:
        from repro.apps.diskmodel import DiskModel
        disks = {i: DiskModel(sc.sim, seed=i, name=f"d{i}")
                 for i in range(n)}
    for i, rsock in enumerate(rsocks):
        Process(sc.sim, receiver_app(rsock, group=sc.group_addr,
                                     port=sc.data_port, result=rres[i],
                                     disk=disks.get(i), verify=verify))
    Process(sc.sim, sender_app(ssock, nbytes, sport=sc.sender_port,
                               group=sc.group_addr, port=sc.data_port,
                               result=sres))
    sc.sim.run(until=120_000_000)
    return sres, rres


def test_all_apps_complete_and_verify():
    sres, rres = run_apps(400_000)
    assert sres.done and sres.bytes_done == 400_000
    for r in rres:
        assert r.done and r.bytes_done == 400_000
        assert r.verified and not r.errors
        assert 0 < r.data_done_at_us <= r.finished_at_us


def test_byte_level_verification():
    _, rres = run_apps(100_000, verify="bytes")
    assert all(r.verified for r in rres)


def test_disk_receivers_complete():
    sres, rres = run_apps(300_000, disk=True)
    assert all(r.done and r.bytes_done == 300_000 for r in rres)


def test_verification_catches_corruption(monkeypatch):
    """A receiver that delivers wrong offsets must fail verification."""
    from repro.kernel.payload import PatternPayload
    sc = build_lan(1, 10e6, seed=22)
    cfg = HRMCConfig(expected_receivers=1).with_rate_cap(10e6)
    ssock = open_hrmc_socket(sc.sender, cfg, sndbuf=128 * 1024)
    rsock = open_hrmc_socket(sc.receivers[0], cfg, rcvbuf=128 * 1024)
    rres = AppResult()

    orig = rsock.transport.__class__.recvmsg

    def corrupt(self, max_bytes):
        out = orig(self, max_bytes)
        return [PatternPayload(p.offset + 1, p.length)
                if isinstance(p, PatternPayload) else p for p in out]

    monkeypatch.setattr(rsock.transport.__class__, "recvmsg", corrupt)
    Process(sc.sim, receiver_app(rsock, group=sc.group_addr,
                                 port=sc.data_port, result=rres))
    sres = AppResult()
    Process(sc.sim, sender_app(ssock, 50_000, sport=sc.sender_port,
                               group=sc.group_addr, port=sc.data_port,
                               result=sres))
    sc.sim.run(until=60_000_000)
    assert rres.done
    assert not rres.verified
    assert rres.errors
