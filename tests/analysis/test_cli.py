"""CLI contract: exit codes, output shape, baseline flags, and the
acceptance gates (clean shipped tree; every positive fixture rejected
with file:line, rule id and fix hint)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"
BAD_FIXTURES = sorted(FIXTURES.glob("*_bad.py"), key=lambda p: p.name)
GOOD_FIXTURES = sorted(p for p in FIXTURES.glob("*.py")
                       if not p.name.endswith("_bad.py"))


def run_simlint(*args: str, cwd: Path = REPO_ROOT):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, cwd=str(cwd), env=env, timeout=120)


def test_shipped_tree_is_clean():
    """Acceptance: `python -m repro.analysis src/repro` exits 0."""
    proc = run_simlint(str(REPO_ROOT / "src" / "repro"))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


@pytest.mark.parametrize("fixture", BAD_FIXTURES,
                         ids=[p.stem for p in BAD_FIXTURES])
def test_positive_fixture_rejected_with_location_rule_hint(fixture):
    """Acceptance: each rule fixture exits non-zero and the report has
    file:line, the rule id and a fix hint."""
    proc = run_simlint(str(fixture), "--no-baseline")
    assert proc.returncode == 1
    rule = fixture.stem.split("_")[0].upper()     # r3_bad -> R3
    assert f"{fixture}:" in proc.stdout
    out_lines = [ln for ln in proc.stdout.splitlines() if f" {rule} " in ln]
    assert out_lines, f"no {rule} finding in output:\n{proc.stdout}"
    head = out_lines[0]
    loc = head.split(" ")[0]                      # path:line:col:
    parts = loc.rstrip(":").rsplit(":", 2)
    assert len(parts) == 3 and parts[1].isdigit() and parts[2].isdigit()
    assert "hint:" in proc.stdout


@pytest.mark.parametrize("fixture", GOOD_FIXTURES,
                         ids=[p.stem for p in GOOD_FIXTURES])
def test_negative_fixture_accepted(fixture):
    proc = run_simlint(str(fixture), "--no-baseline")
    assert proc.returncode == 0, proc.stdout


def test_json_format_is_machine_readable():
    proc = run_simlint(str(FIXTURES / "r1_bad.py"), "--no-baseline",
                       "--format", "json")
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["ok"] is False
    assert doc["counts_by_rule"].get("R1", 0) >= 1
    f = doc["findings"][0]
    assert {"path", "line", "col", "rule", "message", "hint"} <= set(f)


def test_missing_path_exits_2():
    proc = run_simlint("definitely/not/here")
    assert proc.returncode == 2
    assert "no such path" in proc.stderr


def test_update_baseline_round_trip(tmp_path):
    mod = tmp_path / "legacy.py"
    mod.write_text("# simlint: module=repro.net.cli_fixture\n"
                   "_pending = []\n")
    baseline = tmp_path / "simlint.baseline.json"

    first = run_simlint(str(mod), "--baseline", str(baseline),
                        "--update-baseline")
    assert first.returncode == 0
    once = baseline.read_bytes()

    # identical tree -> byte-identical baseline
    again = run_simlint(str(mod), "--baseline", str(baseline),
                        "--update-baseline")
    assert again.returncode == 0
    assert baseline.read_bytes() == once

    # with the baseline active, the legacy finding no longer gates
    gated = run_simlint(str(mod), "--baseline", str(baseline))
    assert gated.returncode == 0
    assert "1 baselined" in gated.stdout

    # fixing the code surfaces the stale entry as removable
    mod.write_text("# simlint: module=repro.net.cli_fixture\n"
                   "_pending = ()\n")
    stale = run_simlint(str(mod), "--baseline", str(baseline))
    assert stale.returncode == 0
    assert "stale baseline" in stale.stdout


def test_ruleset_mismatch_demands_baseline_refresh(tmp_path):
    mod = tmp_path / "m.py"
    mod.write_text("x = 1\n")
    baseline = tmp_path / "b.json"
    baseline.write_text(json.dumps(
        {"format": 1, "ruleset": "simlint-0", "findings": {}}))
    proc = run_simlint(str(mod), "--baseline", str(baseline))
    assert proc.returncode == 2
    assert "simlint-0" in proc.stderr


def test_list_rules_and_version():
    proc = run_simlint("--list-rules")
    assert proc.returncode == 0
    for rule in ("R1", "R2", "R3", "R4", "R5", "R6", "R7"):
        assert rule in proc.stdout
    version = run_simlint("--ruleset-version")
    assert version.returncode == 0
    assert version.stdout.strip().startswith("simlint-")
