"""Suppression + baseline mechanics."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (Baseline, BaselineError, analyze_paths,
                            analyze_source, baseline_key)

BAD = ("# simlint: module=repro.net.suppress_fixture\n"
       "_pending = []\n")


# -- suppressions ---------------------------------------------------------

def test_unsuppressed_finding_fires():
    assert [f.rule for f in analyze_source(BAD, path="x.py")] == ["R3"]


def test_same_line_suppression_silences():
    src = BAD.replace("_pending = []",
                      "_pending = []  # simlint: ok[R3] flushed per run")
    assert analyze_source(src, path="x.py") == []


def test_comment_above_suppression_silences():
    src = BAD.replace(
        "_pending = []",
        "# simlint: ok[R3] flushed per run by TestHarness.reset\n"
        "_pending = []")
    assert analyze_source(src, path="x.py") == []


def test_suppression_is_rule_specific():
    src = BAD.replace("_pending = []",
                      "_pending = []  # simlint: ok[R5] wrong rule")
    assert [f.rule for f in analyze_source(src, path="x.py")] == ["R3"]


def test_suppression_without_reason_is_reported():
    src = BAD.replace("_pending = []",
                      "_pending = []  # simlint: ok[R3]")
    rules = sorted(f.rule for f in analyze_source(src, path="x.py"))
    assert rules == ["R3", "SUP"]   # not silenced, and flagged as bad


def test_suppression_with_unknown_rule_is_reported():
    src = BAD.replace("_pending = []",
                      "_pending = []  # simlint: ok[R99] no such rule")
    rules = sorted(f.rule for f in analyze_source(src, path="x.py"))
    assert "SUP" in rules and "R3" in rules


def test_malformed_marker_is_reported():
    src = BAD + "_x = 1  # simlint: okay[R3] typo\n"
    assert any(f.rule == "SUP" and "malformed" in f.message
               for f in analyze_source(src, path="x.py"))


def test_marker_inside_string_literal_is_ignored():
    src = ("# simlint: module=repro.net.strings_fixture\n"
           "DOC = '# simlint: ok[R3] not a real marker'\n")
    assert analyze_source(src, path="x.py") == []


# -- baseline -------------------------------------------------------------

def _write_tree(tmp_path: Path) -> Path:
    mod = tmp_path / "legacy.py"
    mod.write_text(BAD)
    return tmp_path


def test_baselined_finding_does_not_gate(tmp_path):
    tree = _write_tree(tmp_path)
    first = analyze_paths([tree])
    assert [f.rule for f in first.findings] == ["R3"]

    baseline = Baseline.from_findings(first.findings)
    second = analyze_paths([tree], baseline=baseline)
    assert second.ok
    assert second.findings == []
    assert [f.rule for f in second.baselined] == ["R3"]
    assert second.stale_baseline == []


def test_new_finding_gates_despite_baseline(tmp_path):
    tree = _write_tree(tmp_path)
    baseline = Baseline.from_findings(analyze_paths([tree]).findings)
    (tree / "legacy.py").write_text(BAD + "_more = {}\n")
    report = analyze_paths([tree], baseline=baseline)
    assert not report.ok
    assert len(report.findings) == 1 and "_more" in report.findings[0].message
    assert len(report.baselined) == 1


def test_stale_baseline_entry_reported_removable(tmp_path):
    tree = _write_tree(tmp_path)
    report = analyze_paths([tree])
    baseline = Baseline.from_findings(report.findings)
    stale_key = baseline_key(report.findings[0])

    # fix the code: the baseline entry goes stale, nothing gates
    (tree / "legacy.py").write_text(
        "# simlint: module=repro.net.suppress_fixture\n_pending = ()\n")
    after = analyze_paths([tree], baseline=baseline)
    assert after.ok
    assert after.stale_baseline == [stale_key]


def test_baseline_survives_line_shift(tmp_path):
    """Content-addressed matching: adding lines above the finding does
    not break the baseline match."""
    tree = _write_tree(tmp_path)
    baseline = Baseline.from_findings(analyze_paths([tree]).findings)
    (tree / "legacy.py").write_text(
        BAD.replace("_pending = []",
                    "SHIFT_A = 1\nSHIFT_B = 2\n_pending = []"))
    report = analyze_paths([tree], baseline=baseline)
    assert report.ok and len(report.baselined) == 1


def test_baseline_round_trips_byte_identically(tmp_path):
    tree = _write_tree(tmp_path)
    findings = analyze_paths([tree]).findings
    path = tmp_path / "baseline.json"

    Baseline.from_findings(findings).save(path)
    once = path.read_bytes()
    Baseline.load(path).save(path)
    assert path.read_bytes() == once

    Baseline.from_findings(analyze_paths([tree]).findings).save(path)
    assert path.read_bytes() == once


def test_corrupt_baseline_raises_baseline_error(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{not json")
    with pytest.raises(BaselineError):
        Baseline.load(path)
    path.write_text('{"format": 99, "findings": {}}')
    with pytest.raises(BaselineError):
        Baseline.load(path)
    path.write_text('{"format": 1, "findings": {"k": 0}}')
    with pytest.raises(BaselineError):
        Baseline.load(path)
