# simlint: module=repro.obs.fixture_r5_bad
"""R5 positive: id()/hash() values headed for serialized output."""
import json


def export_components(components):
    table = {id(c): c.state for c in components}  # expect: R5
    key = hash("component-name")  # expect: R5
    return json.dumps({"key": key, "table": list(table.values())})
