# simlint: module=repro.net.fixture_r3_bad
"""R3 positive: the PR 4 packet-id-counter bug class."""
_pending = []  # expect: R3
_seen_ids = {}  # expect: R3
_next_packet_id = 0


def alloc_packet_id():
    global _next_packet_id  # expect: R3
    _next_packet_id += 1
    return _next_packet_id
