# simlint: module=repro.core.fixture_r1_perf_bad
"""R1 positive: tracemalloc/gc measurement machinery in a protocol-path
module.  Heap and collector state vary with the hosting machine exactly
like a clock read, so they belong behind the repro.obs.perf boundary."""
import gc
import tracemalloc
from tracemalloc import take_snapshot


def leak_hunt(receiver):
    tracemalloc.start()  # expect: R1
    receiver.drain()
    gc.collect()  # expect: R1
    current, peak = tracemalloc.get_traced_memory()  # expect: R1
    snap = take_snapshot()  # expect: R1
    tracemalloc.stop()  # expect: R1
    return current, peak, snap


def quiesce():
    gc.disable()  # expect: R1
    gc.set_threshold(0)  # expect: R1
