# simlint: module=repro.apps.fixture_r6_bad
"""R6 positive: bare generator call + non-awaitable yields."""
import time

from repro.sim.process import Delay


def writer_app(disk, blocks):
    yield Delay(100)
    yield 5  # expect: R6
    yield  # expect: R6
    yield time.sleep(0.1)  # expect: R6
    for b in blocks:
        disk.write(b)


def run_transfer(sim, disk):
    writer_app(disk, 3)  # expect: R6
