# simlint: module=repro.core.fixture_r7_bad
"""R7 positive: fork/signal machinery outside repro.fleet."""
import os
import signal  # expect: R7
import subprocess  # expect: R7


def watchdog(pid, child_argv):
    signal.alarm(5)  # expect: R7
    os.kill(pid, 0)  # expect: R7
    return subprocess.run(child_argv)
