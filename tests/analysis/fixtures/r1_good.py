# simlint: module=repro.core.fixture_r1_good
"""R1 negative: simulated time only; the harness carve-out also shown."""


def stamp_event(sim, trace):
    trace.append(sim.now())
    return sim.now_seconds()
