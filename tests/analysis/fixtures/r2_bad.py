# simlint: module=repro.net.fixture_r2_bad
"""R2 positive: global / unseeded randomness."""
import random  # expect: R2
import numpy as np


def jitter(us):
    random.seed(42)  # expect: R2
    rng = random.Random()  # expect: R2
    return rng.random() * us + np.random.poisson(us)  # expect: R2
