# simlint: module=repro.core.fixture_r1_bad
"""R1 positive: wall-clock reads in a protocol-path module."""
import time
from datetime import datetime
from time import perf_counter


def stamp_event(trace):
    t0 = time.time()  # expect: R1
    started = datetime.now()  # expect: R1
    trace.append(perf_counter())  # expect: R1
    return t0, started, time.perf_counter_ns()  # expect: R1
