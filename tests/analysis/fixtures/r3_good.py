# simlint: module=repro.net.fixture_r3_good
"""R3 negative: per-run state hangs off a per-run object; module level
holds only immutable constants."""

IP_OVERHEAD = 20
FLAG_NAMES = ("URG", "FIN")
VALID_TYPES = frozenset({1, 2, 3})

__all__ = ["Allocator", "IP_OVERHEAD"]


class Allocator:
    def __init__(self, sim):
        self.sim = sim
        self._next = 0
        self._issued = []

    def alloc(self):
        self._next += 1
        self._issued.append(self._next)
        return self._next
