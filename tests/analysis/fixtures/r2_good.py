# simlint: module=repro.net.fixture_r2_good
"""R2 negative: randomness through the seeded substream registry."""
from repro.sim.rng import substream


def jitter(master_seed, us):
    rng = substream(master_seed, "nic.jitter")
    return rng.random() * us
