# simlint: module=repro.obs.perf.fixture_r1_perf_allowlisted
"""R1 negative: the perf-observatory boundary may use tracemalloc/gc
(and the wall clock) -- it is measurement, not simulation state."""
import gc
import tracemalloc
from time import perf_counter_ns


def heap_sample():
    if not tracemalloc.is_tracing():
        tracemalloc.start()
    t0 = perf_counter_ns()
    current, peak = tracemalloc.get_traced_memory()
    gc.collect()
    return t0, current, peak
