# simlint: module=repro.obs.fixture_r5_good
"""R5 negative: stable names, hashlib for content, __hash__ dunders."""
import hashlib
import json


class Endpoint:
    def __init__(self, addr, port):
        self.addr = addr
        self.port = port

    def __hash__(self):
        return hash((self.addr, self.port))


def export_components(components):
    table = {c.name: c.state for c in components}
    digest = hashlib.blake2b(b"component-name", digest_size=8).hexdigest()
    return json.dumps({"key": digest, "table": table})
