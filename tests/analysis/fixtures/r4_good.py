# simlint: module=repro.core.fixture_r4_good
"""R4 negative: sorted() everywhere order can leak; dict iteration is
insertion-ordered and deliberately not flagged."""
import os


def schedule(hosts, table):
    order = []
    for h in sorted({"a", "b", "c"}):
        order.append(h)
    pending = set(hosts)
    for h in sorted(pending):
        order.append(h)
    for key, value in table.items():
        order.append((key, value))
    lowest = min(set(hosts))
    return ",".join(sorted(set(hosts))), lowest


def config_files(path):
    return sorted(f for f in os.listdir(path))
