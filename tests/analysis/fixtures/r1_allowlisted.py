# simlint: module=repro.harness.fixture_r1_allowlisted
"""R1 negative: the harness carve-out may read the host clock."""
import time


def progress_line(done, total):
    return f"[{time.time():.0f}] {done}/{total}"
