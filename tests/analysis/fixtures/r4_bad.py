# simlint: module=repro.core.fixture_r4_bad
"""R4 positive: unordered iteration into order-sensitive paths."""
import os


def schedule(hosts):
    order = []
    for h in {"a", "b", "c"}:  # expect: R4
        order.append(h)
    pending = set(hosts)
    for h in pending:  # expect: R4
        order.append(h)
    return ",".join(set(hosts))  # expect: R4


def config_files(path):
    return [f for f in os.listdir(path)]  # expect: R4
