# simlint: module=repro.apps.fixture_r6_good
"""R6 negative: processes scheduled through the engine, sim awaitables
only, plain utility generators untouched."""
from repro.sim.process import Delay, Process, SimEvent


def writer_app(sim, disk, blocks, done):
    for b in blocks:
        yield Delay(100)
        disk.write(b)
    yield from flusher_app(sim, disk)
    value = yield done
    return value


def flusher_app(sim, disk):
    yield Delay(10)
    disk.flush()


def run_transfer(sim, disk):
    done = SimEvent(sim, name="done")
    proc = Process(sim, writer_app(sim, disk, [b"x"], done), name="writer")
    return proc


def chunk_pairs(chunks):
    # ordinary utility generator: yield whatever it likes
    for i, c in enumerate(chunks):
        yield i, c
