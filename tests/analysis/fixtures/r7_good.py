# simlint: module=repro.fleet.worker
"""R7 negative: the fleet worker owns the SIGALRM timeout machinery."""
import signal


def with_timeout(fn, timeout_s):
    def _expired(signum, frame):
        raise TimeoutError

    old = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)
