"""Mutation tests: seed the PR 4 bug back into the real tree and prove
the analyzer catches it.

PR 4's worker-safety fix replaced a module-global packet-id counter in
``repro.net.packet`` with per-Simulator allocation after the global had
silently broken cross-run determinism and poisoned the content-addressed
cache.  R3 exists so that bug class cannot come back; these tests
re-introduce it verbatim and assert the rule fires.
"""

from __future__ import annotations

from pathlib import Path

import repro.net.packet as packet_mod
from repro.analysis import analyze_source

PACKET_PY = Path(packet_mod.__file__)

#: the PR 4 bug, as it looked before the fix
COUNTER_MUTATION = '''

_next_packet_id = 0


def new_packet_id() -> int:
    global _next_packet_id
    _next_packet_id += 1
    return _next_packet_id
'''


def _analyze_packet(source: str):
    return analyze_source(source, path=str(PACKET_PY),
                          module="repro.net.packet")


def test_shipped_packet_module_is_clean():
    findings = _analyze_packet(PACKET_PY.read_text())
    assert findings == []


def test_reintroduced_packet_id_counter_is_caught_by_r3():
    mutated = PACKET_PY.read_text() + COUNTER_MUTATION
    findings = _analyze_packet(mutated)
    r3 = [f for f in findings if f.rule == "R3"]
    assert r3, "R3 failed to catch the module-global packet-id counter"
    assert any("global _next_packet_id" in f.line_text for f in r3)
    # the finding points into the mutated region, with a usable hint
    assert all(f.path.endswith("packet.py") for f in r3)
    assert any("per run" in f.hint for f in r3)


def test_mutable_module_registry_is_caught_by_r3():
    mutated = PACKET_PY.read_text() + "\n_in_flight: dict = {}\n"
    findings = _analyze_packet(mutated)
    assert any(f.rule == "R3" and "_in_flight" in f.message
               for f in findings)


def test_counter_outside_protocol_packages_not_r3_scoped():
    """The same counter in, say, the harness is not R3's business."""
    source = "_n = 0\n\ndef bump():\n    global _n\n    _n += 1\n"
    findings = analyze_source(source, path="x.py",
                              module="repro.harness.progress")
    assert [f for f in findings if f.rule == "R3"] == []
