"""Package-shape hygiene: no empty sub-packages ship under src/repro.

An ``__init__.py``-only directory with no sibling modules is either a
stale remnant of a refactor (the old one-module ``repro.rmc`` package,
folded into ``repro.core.rmc``), a placeholder that should not be on
the import path yet, or a plain module wearing a package costume.
Either way it misleads readers about the architecture, so the tree
must not contain one.
"""

import os

SRC_ROOT = os.path.join(os.path.dirname(__file__), "..", "..",
                        "src", "repro")


def iter_packages():
    for dirpath, dirnames, filenames in os.walk(SRC_ROOT):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        if "__init__.py" in filenames:
            yield dirpath, dirnames, filenames


def test_src_tree_exists():
    assert os.path.isdir(SRC_ROOT)
    assert sum(1 for _ in iter_packages()) > 5


def test_no_empty_subpackages():
    offenders = []
    for dirpath, dirnames, filenames in iter_packages():
        if dirpath == SRC_ROOT:
            continue        # the top-level package aggregates, fine
        modules = [f for f in filenames
                   if f.endswith(".py") and f != "__init__.py"]
        if modules or dirnames:
            continue
        # a leaf package holding only its own __init__.py is the
        # repro.rmc shape: one module wearing a package costume --
        # trivial or not, it belongs in the parent as a plain module
        offenders.append(os.path.relpath(dirpath, SRC_ROOT))
    assert not offenders, (
        f"__init__-only sub-packages under src/repro: "
        f"{sorted(offenders)} -- fold them into their parent as a "
        f"plain module (see repro.core.rmc)")


def test_rmc_package_is_gone():
    """The PR-8 fold specifically: repro.rmc lives in core now."""
    assert not os.path.isdir(os.path.join(SRC_ROOT, "rmc"))
    assert os.path.isfile(os.path.join(SRC_ROOT, "core", "rmc.py"))
