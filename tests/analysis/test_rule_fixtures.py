"""Fixture-driven self-test: every rule has positive and negative
snippets, annotated in-place.

Each ``fixtures/*.py`` file declares the module identity simlint should
assume (``# simlint: module=...``) and marks every line that must fire
with ``# expect: R<n>``.  The harness asserts exact agreement in both
directions -- an unexpected finding fails just as hard as a missed one,
so the fixtures double as a false-positive regression net.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import analyze_source

FIXTURES = Path(__file__).parent / "fixtures"
_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<rules>[A-Z0-9, ]+)")

RULE_FIXTURES = sorted(FIXTURES.glob("*.py"), key=lambda p: p.name)


def expected_findings(path: Path) -> set[tuple[int, str]]:
    out: set[tuple[int, str]] = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        m = _EXPECT_RE.search(line)
        if m:
            for rule in m.group("rules").split(","):
                if rule.strip():
                    out.add((lineno, rule.strip()))
    return out


def test_fixture_inventory_covers_every_rule():
    """>= 7 rules, each with at least one positive and one negative
    fixture file."""
    names = {p.stem for p in RULE_FIXTURES}
    for n in range(1, 8):
        assert f"r{n}_bad" in names, f"missing positive fixture for R{n}"
        assert any(name.startswith(f"r{n}_") and not name.endswith("_bad")
                   for name in names), f"missing negative fixture for R{n}"


@pytest.mark.parametrize("path", RULE_FIXTURES,
                         ids=[p.stem for p in RULE_FIXTURES])
def test_fixture(path: Path):
    findings = analyze_source(path.read_text(), path=str(path))
    got = {(f.line, f.rule) for f in findings}
    want = expected_findings(path)
    missing = want - got
    unexpected = got - want
    assert not missing, f"rule did not fire: {sorted(missing)}"
    assert not unexpected, \
        f"unexpected findings (false positives): {sorted(unexpected)}"
    if path.stem.endswith("_bad"):
        assert want, f"{path.name} is a positive fixture without expects"
    else:
        assert not want and not got


def test_findings_carry_location_rule_and_hint():
    bad = FIXTURES / "r3_bad.py"
    findings = analyze_source(bad.read_text(), path=str(bad))
    assert findings, "positive fixture produced nothing"
    for f in findings:
        assert f.path == str(bad)
        assert f.line > 0 and f.col > 0
        assert f.rule == "R3"
        assert f.hint, "every finding must carry a fix hint"
        assert f.line_text, "findings carry the offending line text"


def test_findings_sorted_and_deterministic():
    bad = FIXTURES / "r2_bad.py"
    one = analyze_source(bad.read_text(), path=str(bad))
    two = analyze_source(bad.read_text(), path=str(bad))
    assert one == two
    assert one == sorted(one)
