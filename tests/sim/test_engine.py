"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator, SimulationError


def test_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0
    assert sim.pending() == 0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.call_at(30, order.append, "c")
    sim.call_at(10, order.append, "a")
    sim.call_at(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fifo():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.call_at(100, order.append, tag)
    sim.run()
    assert order == list("abcde")


def test_call_after_relative():
    sim = Simulator()
    seen = []
    sim.call_after(5, lambda: sim.call_after(7, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [12]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.call_at(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-1, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    entry = sim.call_at(10, fired.append, 1)
    sim.call_at(20, fired.append, 2)
    sim.cancel(entry)
    sim.run()
    assert fired == [2]


def test_cancel_is_idempotent():
    sim = Simulator()
    entry = sim.call_at(10, lambda: None)
    sim.cancel(entry)
    sim.cancel(entry)
    assert sim.pending() == 0
    sim.run()


def test_run_until_advances_clock_exactly():
    sim = Simulator()
    sim.call_at(10, lambda: None)
    sim.call_at(100, lambda: None)
    sim.run(until=50)
    assert sim.now == 50
    assert sim.pending() == 1


def test_run_until_includes_boundary_events():
    sim = Simulator()
    fired = []
    sim.call_at(50, fired.append, 1)
    sim.run(until=50)
    assert fired == [1]


def test_max_events_budget():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.call_at(i, fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_single_event():
    sim = Simulator()
    fired = []
    sim.call_at(5, fired.append, "x")
    assert sim.step() is True
    assert fired == ["x"]
    assert sim.step() is False


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            sim.call_after(1, chain, n + 1)

    sim.call_at(0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5


def test_pending_counts_live_entries():
    sim = Simulator()
    e1 = sim.call_at(10, lambda: None)
    sim.call_at(20, lambda: None)
    assert sim.pending() == 2
    sim.cancel(e1)
    assert sim.pending() == 1


def test_peek_time_skips_cancelled():
    sim = Simulator()
    e1 = sim.call_at(10, lambda: None)
    sim.call_at(20, lambda: None)
    sim.cancel(e1)
    assert sim.peek_time() == 20


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.call_at(i, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_compaction_purges_cancelled_entries():
    """Cancelling most of a large heap triggers compaction, and the
    surviving events still fire in order."""
    sim = Simulator()
    fired = []
    entries = [sim.call_at(i + 1, fired.append, i + 1) for i in range(500)]
    # cancel everything but every 10th event: dead quickly outnumbers
    # live past COMPACT_MIN, so the heap must rebuild at least once
    for i, e in enumerate(entries):
        if (i + 1) % 10:
            sim.cancel(e)
    assert sim.compactions > 0
    # the heap holds the 50 live entries plus only the few cancelled
    # since the last rebuild -- not all 450 dead ones
    assert sim.pending() == 50
    assert len(sim._heap) == 50 + sim._dead < 500
    sim.run()
    assert fired == list(range(10, 501, 10))


def test_no_compaction_below_threshold():
    """Tiny heaps are not worth rebuilding."""
    sim = Simulator()
    entries = [sim.call_at(i + 1, lambda: None) for i in range(20)]
    for e in entries:
        sim.cancel(e)
    assert sim.compactions == 0
    sim.run()


def test_compaction_counters_consistent_after_run():
    sim = Simulator()
    fired = []
    for round_ in range(5):
        entries = [sim.call_at(sim.now + i + 1, fired.append, round_)
                   for i in range(200)]
        for e in entries[:150]:
            sim.cancel(e)
        sim.run()
    assert len(fired) == 5 * 50
    assert sim.pending() == 0
    assert sim._dead == 0


# -- profiler instrumentation hook -----------------------------------------

def test_profiler_receives_every_executed_callback():
    from repro.obs.profiler import SimProfiler
    sim = Simulator()
    sim.profiler = SimProfiler()
    for i in range(5):
        sim.call_at(i * 10, lambda: None)
    sim.run()
    assert sim.profiler.events == 5 == sim.events_processed


def test_profiler_attribution_exact_under_cancel():
    """Cancelled entries never reach the profiler, so per-site counts
    equal callbacks actually executed."""
    from repro.obs.profiler import SimProfiler, site_of

    def victim():
        pass

    def survivor():
        pass

    sim = Simulator()
    sim.profiler = SimProfiler()
    victims = [sim.call_at(i + 1, victim) for i in range(10)]
    for e in victims[:7]:
        sim.cancel(e)
    for i in range(4):
        sim.call_at(i + 20, survivor)
    sim.run()
    sites = sim.profiler.sites
    assert sites[site_of(victim)].events == 3
    assert sites[site_of(survivor)].events == 4
    assert sim.profiler.events == 7


def test_profiler_attribution_exact_under_compaction():
    """Heap compaction discards only never-to-fire entries: attribution
    is unchanged by however many rebuilds happen."""
    from repro.obs.profiler import SimProfiler, site_of

    def kept():
        pass

    sim = Simulator()
    sim.profiler = SimProfiler()
    entries = [sim.call_at(i + 1, kept) for i in range(500)]
    for i, e in enumerate(entries):
        if (i + 1) % 10:
            sim.cancel(e)
    assert sim.compactions > 0
    sim.run()
    assert sim.profiler.sites[site_of(kept)].events == 50
    assert sim.profiler.events == 50


def test_profiler_sim_time_attribution_sums_to_final_clock():
    """Each firing is charged the virtual-clock advance it caused, so
    the per-site sim_us totals partition the run's final time."""
    from repro.obs.profiler import SimProfiler
    sim = Simulator()
    sim.profiler = SimProfiler()
    sim.call_at(100, lambda: None)
    sim.call_at(100, lambda: None)   # same instant: zero advance
    sim.call_at(250, lambda: None)
    sim.call_at(1000, lambda: None)
    sim.run()
    total = sum(s.sim_us for s in sim.profiler.sites.values())
    assert total == sim.now == 1000


def test_profiler_step_parity_with_run():
    from repro.obs.profiler import SimProfiler
    sim = Simulator()
    sim.profiler = SimProfiler()
    sim.call_at(5, lambda: None)
    sim.call_at(15, lambda: None)
    while sim.step():
        pass
    assert sim.profiler.events == 2
    total = sum(s.sim_us for s in sim.profiler.sites.values())
    assert total == 15


def test_profiler_attributes_raising_callbacks():
    """A callback that raises is still attributed (try/finally), so the
    profile stays exact even when a run dies mid-flight."""
    from repro.obs.profiler import SimProfiler

    def boom():
        raise RuntimeError("x")

    sim = Simulator()
    sim.profiler = SimProfiler()
    sim.call_at(10, boom)
    with pytest.raises(RuntimeError):
        sim.run()
    assert sim.profiler.events == 1
    assert sim.profiler.wall_ns_total > 0


def test_no_profiler_no_overhead_path():
    """The default (profiler=None) path still runs everything."""
    sim = Simulator()
    assert sim.profiler is None
    fired = []
    sim.call_at(1, fired.append, 1)
    sim.run()
    assert fired == [1]
