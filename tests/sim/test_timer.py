"""Unit tests for Linux-style timers and jiffy helpers."""

from repro.sim.engine import Simulator
from repro.sim.timer import Timer, JIFFY_US, jiffies_to_us, us_to_jiffies


def test_jiffy_constants():
    assert JIFFY_US == 10_000
    assert jiffies_to_us(50) == 500_000
    assert us_to_jiffies(500_000) == 50
    assert us_to_jiffies(9_999) == 0


def test_timer_fires_once():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: fired.append(sim.now))
    t.mod_after(100)
    sim.run()
    assert fired == [100]
    assert not t.pending
    assert t.fired_count == 1


def test_mod_timer_rearms():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: fired.append(sim.now))
    t.mod_after(100)
    t.mod_after(200)  # re-arm replaces the earlier expiry
    sim.run()
    assert fired == [200]


def test_del_timer_cancels():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: fired.append(1))
    t.mod_after(100)
    assert t.del_timer() is True
    assert t.del_timer() is False
    sim.run()
    assert fired == []


def test_timer_rearm_from_callback():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: None)

    def cb():
        fired.append(sim.now)
        if len(fired) < 3:
            t.mod_after(10)

    t._callback = cb
    t.mod_after(10)
    sim.run()
    assert fired == [10, 20, 30]


def test_expires_property():
    sim = Simulator()
    t = Timer(sim, lambda: None)
    assert t.expires is None
    t.mod_timer(250)
    assert t.expires == 250
    t.del_timer()
    assert t.expires is None


def test_mod_timer_in_past_clamps_to_now():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: fired.append(sim.now))
    sim.call_at(100, lambda: t.mod_timer(50))
    sim.run()
    assert fired == [100]
