"""Unit tests for generator-based processes and events."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import Delay, Process, SimEvent


def test_delay_sequencing():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield Delay(100)
        trace.append(("mid", sim.now))
        yield Delay(50)
        trace.append(("end", sim.now))

    Process(sim, proc())
    sim.run()
    assert trace == [("start", 0), ("mid", 100), ("end", 150)]


def test_process_result():
    sim = Simulator()

    def proc():
        yield Delay(1)
        return 42

    p = Process(sim, proc())
    sim.run()
    assert not p.alive
    assert p.result == 42


def test_event_wakes_all_waiters_with_value():
    sim = Simulator()
    ev = SimEvent(sim)
    got = []

    def waiter(tag):
        value = yield ev
        got.append((tag, value, sim.now))

    Process(sim, waiter("a"))
    Process(sim, waiter("b"))
    sim.call_at(500, ev.fire, "ping")
    sim.run()
    assert sorted(got) == [("a", "ping", 500), ("b", "ping", 500)]


def test_event_is_reusable():
    sim = Simulator()
    ev = SimEvent(sim)
    wakes = []

    def waiter():
        yield ev
        wakes.append(sim.now)
        yield ev
        wakes.append(sim.now)

    Process(sim, waiter())
    sim.call_at(10, ev.fire)
    sim.call_at(20, ev.fire)
    sim.run()
    assert wakes == [10, 20]


def test_late_waiter_blocks_until_next_fire():
    sim = Simulator()
    ev = SimEvent(sim)
    wakes = []

    def waiter():
        yield Delay(50)  # arrive after the first fire
        yield ev
        wakes.append(sim.now)

    Process(sim, waiter())
    sim.call_at(10, ev.fire)
    sim.call_at(90, ev.fire)
    sim.run()
    assert wakes == [90]


def test_yield_from_composition():
    sim = Simulator()

    def inner():
        yield Delay(30)
        return "inner-result"

    def outer():
        value = yield from inner()
        return (value, sim.now)

    p = Process(sim, outer())
    sim.run()
    assert p.result == ("inner-result", 30)


def test_join_returns_result():
    sim = Simulator()

    def worker():
        yield Delay(100)
        return 7

    results = []

    def boss(w):
        value = yield from w.join()
        results.append((value, sim.now))

    w = Process(sim, worker())
    Process(sim, boss(w))
    sim.run()
    assert results == [(7, 100)]


def test_join_after_completion_is_immediate():
    sim = Simulator()

    def worker():
        yield Delay(10)
        return "done"

    w = Process(sim, worker())
    results = []

    def boss():
        yield Delay(500)
        value = yield from w.join()
        results.append((value, sim.now))

    Process(sim, boss())
    sim.run()
    assert results == [("done", 500)]


def test_process_error_propagates_at_join():
    sim = Simulator()

    def worker():
        yield Delay(10)
        raise ValueError("boom")

    w = Process(sim, worker())
    caught = []

    def boss():
        try:
            yield from w.join()
        except ValueError as exc:
            caught.append(str(exc))

    Process(sim, boss())
    sim.run()
    assert caught == ["boom"]
    assert isinstance(w.error, ValueError)


def test_kill_stops_process():
    sim = Simulator()
    trace = []

    def worker():
        trace.append("start")
        yield Delay(1000)
        trace.append("never")

    w = Process(sim, worker())
    sim.call_at(100, w.kill)
    sim.run()
    assert trace == ["start"]
    assert not w.alive


def test_bad_yield_is_an_error():
    sim = Simulator()

    def worker():
        yield 123  # not a Delay or SimEvent

    w = Process(sim, worker())
    sim.run()
    assert isinstance(w.error, TypeError)


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-5)
