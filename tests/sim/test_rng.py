"""Unit tests for deterministic RNG substreams."""

from repro.sim.rng import substream


def test_same_seed_same_name_reproduces():
    a = substream(42, "router:1")
    b = substream(42, "router:1")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    a = substream(42, "router:1")
    b = substream(42, "router:2")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = substream(1, "nic")
    b = substream(2, "nic")
    assert a.random() != b.random()


def test_stream_is_usable_random():
    r = substream(0, "x")
    values = [r.randrange(100) for _ in range(100)]
    assert all(0 <= v < 100 for v in values)
