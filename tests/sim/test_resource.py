"""Unit tests for the CSIM-style Resource facility."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import Delay, Process
from repro.sim.resource import Resource


def test_try_acquire_within_capacity():
    sim = Simulator()
    r = Resource(sim, capacity=2)
    assert r.try_acquire()
    assert r.try_acquire()
    assert not r.try_acquire()
    r.release()
    assert r.try_acquire()


def test_release_without_acquire_raises():
    sim = Simulator()
    r = Resource(sim)
    with pytest.raises(RuntimeError):
        r.release()


def test_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_fifo_handoff_order():
    sim = Simulator()
    r = Resource(sim, capacity=1)
    order = []

    def worker(tag, hold_us):
        yield from r.acquire()
        order.append((tag, sim.now))
        yield Delay(hold_us)
        r.release()

    Process(sim, worker("a", 100))
    Process(sim, worker("b", 100))
    Process(sim, worker("c", 100))
    sim.run()
    assert [t for t, _ in order] == ["a", "b", "c"]
    assert [at for _, at in order] == [0, 100, 200]


def test_capacity_allows_parallelism():
    sim = Simulator()
    r = Resource(sim, capacity=2)
    starts = []

    def worker(tag):
        yield from r.acquire()
        starts.append((tag, sim.now))
        yield Delay(100)
        r.release()

    for tag in "abcd":
        Process(sim, worker(tag))
    sim.run()
    by_time = {}
    for tag, at in starts:
        by_time.setdefault(at, []).append(tag)
    assert len(by_time[0]) == 2     # two run immediately
    assert len(by_time[100]) == 2   # two more after the first pair


def test_wait_statistics():
    sim = Simulator()
    r = Resource(sim, capacity=1)

    def worker(hold_us):
        yield from r.acquire()
        yield Delay(hold_us)
        r.release()

    Process(sim, worker(1000))
    Process(sim, worker(1000))
    sim.run()
    assert r.stats.acquisitions == 2
    assert r.stats.mean_wait_us() == pytest.approx(500)  # (0 + 1000)/2
    assert r.stats.max_queue == 1


def test_utilization_measured():
    sim = Simulator()
    r = Resource(sim, capacity=1)

    def worker():
        yield from r.acquire()
        yield Delay(600)
        r.release()
        yield Delay(400)  # idle tail so utilization < 1

    p = Process(sim, worker())
    sim.run()
    assert sim.now == 1000
    assert r.stats.utilization(r.capacity) == pytest.approx(0.6)


def test_queue_length_tracks_waiters():
    sim = Simulator()
    r = Resource(sim, capacity=1)

    def holder():
        yield from r.acquire()
        yield Delay(1000)
        r.release()

    def waiter():
        yield from r.acquire()
        r.release()

    Process(sim, holder())
    Process(sim, waiter())
    Process(sim, waiter())
    sim.run(until=500)
    assert r.queue_length == 2
    sim.run()
    assert r.queue_length == 0
    assert r.in_use == 0
