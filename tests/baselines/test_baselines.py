"""Tests for the ACK-based, polling-based and TCP-like baselines."""

import pytest

from repro.harness.runner import run_transfer
from repro.net.topology import GroupSpec
from repro.workloads.groups import GROUP_B
from repro.workloads.scenarios import build_lan, build_wan


@pytest.mark.parametrize("protocol", ["ack", "polling", "tcp"])
def test_reliable_delivery_on_clean_lan(protocol):
    sc = build_lan(2, 10e6, seed=1)
    res = run_transfer(sc, nbytes=200_000, protocol=protocol,
                       sndbuf=128 * 1024, verify="bytes", max_sim_s=120)
    assert res.ok
    assert all(r.bytes_done == 200_000 for r in res.per_receiver)


@pytest.mark.parametrize("protocol", ["ack", "polling", "tcp"])
def test_reliable_delivery_under_loss(protocol):
    sc = build_wan([GROUP_B] * 3, 10e6, seed=2)
    res = run_transfer(sc, nbytes=150_000, protocol=protocol,
                       sndbuf=128 * 1024, verify="bytes", max_sim_s=600)
    assert res.ok, f"{protocol} failed under loss"


def test_ack_feedback_scales_with_receivers():
    fb = {}
    for n in (1, 3):
        sc = build_lan(n, 10e6, seed=3)
        res = run_transfer(sc, nbytes=150_000, protocol="ack",
                           sndbuf=128 * 1024)
        assert res.ok
        fb[n] = res.receiver_stats.updates_sent
    # ACK implosion: n receivers ACK every packet
    assert fb[3] > 2.5 * fb[1]


def test_hrmc_feedback_far_below_ack():
    results = {}
    for proto in ("hrmc", "ack"):
        sc = build_lan(3, 10e6, seed=4)
        res = run_transfer(sc, nbytes=400_000, protocol=proto,
                           sndbuf=256 * 1024)
        assert res.ok
        results[proto] = res.feedback_total
    assert results["hrmc"] * 5 < results["ack"]


def test_polling_feedback_bounded_by_polls():
    sc = build_lan(3, 10e6, seed=5)
    res = run_transfer(sc, nbytes=400_000, protocol="polling",
                       sndbuf=256 * 1024)
    assert res.ok
    # receivers only speak when polled (plus join/parting status)
    assert res.receiver_stats.updates_sent <= \
        res.sender_stats.probes_sent + 2 * 3


def test_polling_recovers_from_correlated_loss():
    lossy = GroupSpec("L", delay_us=10_000, loss_rate=0.03)
    sc = build_wan([lossy] * 3, 10e6, seed=6)
    res = run_transfer(sc, nbytes=150_000, protocol="polling",
                       sndbuf=128 * 1024, max_sim_s=600)
    assert res.ok
    assert res.sender_stats.retrans_pkts > 0


def test_tcp_sequential_pays_n_times():
    per = {}
    for n in (1, 3):
        sc = build_lan(n, 10e6, seed=7)
        res = run_transfer(sc, nbytes=300_000, protocol="tcp",
                           sndbuf=128 * 1024)
        assert res.ok
        per[n] = res.duration_us
    assert per[3] > 2.2 * per[1]


def test_tcp_fast_retransmit_under_loss():
    lossy = GroupSpec("L", delay_us=10_000, loss_rate=0.02)
    sc = build_wan([lossy], 10e6, seed=8)
    res = run_transfer(sc, nbytes=300_000, protocol="tcp",
                       sndbuf=256 * 1024, max_sim_s=600)
    assert res.ok
    assert res.sender_stats.retrans_pkts > 0


def test_ack_window_advances_on_slowest():
    """With one slow (high-delay) receiver, ACK-based throughput is
    paced by it."""
    fast = GroupSpec("F", delay_us=2_000, loss_rate=0.0)
    slow = GroupSpec("S", delay_us=150_000, loss_rate=0.0)
    sc_fast = build_wan([fast] * 2, 10e6, seed=9)
    r_fast = run_transfer(sc_fast, nbytes=200_000, protocol="ack",
                          sndbuf=128 * 1024, max_sim_s=300)
    sc_mixed = build_wan([fast, slow], 10e6, seed=9)
    r_mixed = run_transfer(sc_mixed, nbytes=200_000, protocol="ack",
                           sndbuf=128 * 1024, max_sim_s=300)
    assert r_fast.ok and r_mixed.ok
    assert r_mixed.duration_us > 1.5 * r_fast.duration_us
