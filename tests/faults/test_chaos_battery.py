"""Property battery: seeded random fault plans must never produce an
unsafe protocol state.

Each case builds a chaos scenario (seed-random :class:`FaultPlan` over
link flaps, degradations, NIC bursts/corruption, host pauses, clock
skew, timer stalls, and receiver crash/restart), runs a transfer with
the invariant checker attached, and asserts the safety contract:

* the checker stays green (no :class:`InvariantViolation` raised),
* every surviving receiver delivers and verifies the full stream,
* crashed receivers are accounted for -- either restarted (rejoin
  delivers a verified suffix) or cleanly absent.
"""

import pytest

from repro.harness.experiments import chaos_config
from repro.harness.runner import run_transfer
from repro.workloads.scenarios import build_chaos

MBPS_10 = 10e6
NBYTES = 200_000
HORIZON_US = 1_000_000

pytestmark = pytest.mark.chaos

HRMC_SEEDS = list(range(20))
BASELINE_SEEDS = list(range(8))


def _run_chaos(protocol, seed, *, allow_crash, max_outage_us=None, cfg=None):
    sc = build_chaos(3, MBPS_10, seed=seed, horizon_us=HORIZON_US,
                     allow_crash=allow_crash, max_outage_us=max_outage_us)
    return sc, run_transfer(sc, protocol=protocol, nbytes=NBYTES,
                            sndbuf=128 * 1024, cfg=cfg, invariants=True,
                            max_sim_s=120)


@pytest.mark.parametrize("seed", HRMC_SEEDS)
def test_hrmc_survives_random_faults(seed):
    sc, res = _run_chaos("hrmc", seed, allow_crash=True, cfg=chaos_config())
    assert res.invariant_checks > 0
    assert res.surviving_ok, (sc.fault_plan.describe(),
                              [(r.name, r.bytes_done, r.errors)
                               for r in res.per_receiver])
    # crash bookkeeping is consistent with the plan
    planned_crashes = {a.target for a in sc.fault_plan.crashes}
    assert set(res.crashed_receivers) <= planned_crashes
    for r in res.rejoin_results:
        # a rejoin may deliver nothing (the sender finished first);
        # whatever it did deliver must be a verified mid-stream suffix
        assert r.verified, r.errors
        if r.bytes_done > 0:
            assert r.resumed_at_offset >= 0


@pytest.mark.parametrize("seed", BASELINE_SEEDS)
def test_ack_survives_transient_faults(seed):
    # The ACK baseline cannot tolerate a silent receiver (it blocks the
    # window forever), so the plan is crash-free and outage-bounded.
    sc, res = _run_chaos("ack", seed, allow_crash=False,
                         max_outage_us=300_000)
    assert res.invariant_checks > 0
    assert res.ok, (sc.fault_plan.describe(),
                    [(r.name, r.bytes_done, r.errors)
                     for r in res.per_receiver])


@pytest.mark.parametrize("seed", BASELINE_SEEDS)
def test_polling_survives_transient_faults(seed):
    # Polling evicts members after evict_after_polls silent polls, so
    # outages must stay well inside the eviction horizon.
    sc, res = _run_chaos("polling", seed, allow_crash=False,
                         max_outage_us=300_000)
    assert res.invariant_checks > 0
    assert res.ok, (sc.fault_plan.describe(),
                    [(r.name, r.bytes_done, r.errors)
                     for r in res.per_receiver])


def test_tcp_rejects_fault_plans():
    sc = build_chaos(2, MBPS_10, seed=0, horizon_us=HORIZON_US)
    with pytest.raises(ValueError, match="fault"):
        run_transfer(sc, protocol="tcp", nbytes=50_000, sndbuf=64 * 1024)
