"""Acceptance scenario: a receiver crashes mid-transfer, restarts, and
rejoins the live stream -- invariants green, survivors complete, and the
whole chaotic run is byte-identical across same-seed repeats.

Seed 10 is a known crash-and-restart plan: receiver 2 crashes at
t=150564us and restarts at t=342577us, well inside the transfer.
"""

import filecmp

import pytest

from repro.harness.experiments import chaos_config
from repro.harness.runner import run_transfer
from repro.trace.tracer import PacketTracer
from repro.workloads.scenarios import build_chaos

pytestmark = pytest.mark.chaos

SEED = 10
NBYTES = 250_000


def _run(tracer=None):
    sc = build_chaos(3, 10e6, seed=SEED, horizon_us=1_000_000)
    res = run_transfer(sc, nbytes=NBYTES, sndbuf=128 * 1024,
                       cfg=chaos_config(), invariants=True,
                       tracer=tracer, max_sim_s=120)
    return sc, res


def test_seed10_crashes_and_restarts_receiver2():
    sc, res = _run()
    crashes = sc.fault_plan.crashes
    assert len(crashes) == 1 and crashes[0].target == 2
    assert crashes[0].restart_at_us is not None
    assert res.crashed_receivers == [2]
    assert res.restarted_receivers == [2]
    assert res.invariant_checks > 0
    assert res.surviving_ok


def test_seed10_rejoin_delivers_verified_suffix():
    _, res = _run()
    # survivors got everything
    for i in (0, 1):
        r = res.per_receiver[i]
        assert r.done and r.verified and r.bytes_done == NBYTES
    # the crashed receiver delivered a prefix, then its rejoin locked
    # onto a mid-stream offset and verified the suffix from there
    crashed = res.per_receiver[2]
    assert 0 < crashed.bytes_done < NBYTES
    (rejoin,) = res.rejoin_results
    assert rejoin.verified, rejoin.errors
    assert rejoin.resumed_at_offset > 0
    assert rejoin.resumed_at_offset + rejoin.bytes_done == NBYTES


def test_seed10_trace_deterministic(tmp_path):
    paths = []
    for i in range(2):
        tracer = PacketTracer()
        _, res = _run(tracer=tracer)
        assert res.surviving_ok
        path = tmp_path / f"run{i}.jsonl"
        n = tracer.save(str(path))
        assert n > 0
        paths.append(path)
    assert filecmp.cmp(*paths, shallow=False), \
        "same chaos seed produced different traces"
