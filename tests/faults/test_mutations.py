"""Mutation tests: deliberately break the protocol and prove the
invariant checker catches it.

A checker that never fires is indistinguishable from no checker; each
test here monkeypatches one safety mechanism out of the implementation
and asserts :class:`InvariantViolation` is raised with the offending
state in the message.
"""

from dataclasses import replace

import pytest

from repro.core.config import HRMCConfig
from repro.core.receiver import HRMCReceiver
from repro.core.sender import HRMCSender
from repro.faults import InvariantViolation
from repro.harness.experiments import chaos_config
from repro.harness.runner import run_transfer
from repro.core.types import PacketType
from repro.kernel.skbuff import SKBuff
from repro.workloads.scenarios import build_chaos, build_lan

pytestmark = pytest.mark.chaos


def test_skipping_membership_gate_trips_release_invariant(monkeypatch):
    """A sender that releases buffers without checking the member table
    violates reliability: some member still lacks the released bytes."""
    monkeypatch.setattr(HRMCSender, "_info_complete",
                        lambda self, boundary: True)
    sc = build_chaos(3, 10e6, seed=3, horizon_us=1_000_000)
    with pytest.raises(InvariantViolation, match="releasing"):
        run_transfer(sc, nbytes=250_000, sndbuf=128 * 1024,
                     cfg=chaos_config(), invariants=True, max_sim_s=120)


def test_skipping_repair_cache_trim_trips_bound_invariant(monkeypatch):
    """A receiver that never trims its repair cache grows without bound;
    the checker enforces the configured byte ceiling."""
    def no_trim(self, seq, length, payload):
        if seq in self._repair_cache:
            return
        entry = SKBuff(sport=self.sock.num, dport=self.sock.num, seq=seq,
                       ptype=PacketType.DATA, length=length, payload=payload)
        self._repair_cache[seq] = entry
        self._repair_cache_bytes += length
        # mutation: the `while > repair_cache_bytes: popitem()` loop
        # from _cache_for_repair is gone

    monkeypatch.setattr(HRMCReceiver, "_cache_for_repair", no_trim)
    cfg = replace(HRMCConfig(), local_recovery=True,
                  repair_cache_bytes=32 * 1024)
    sc = build_lan(2, 10e6, seed=0)
    with pytest.raises(InvariantViolation, match="repair cache"):
        run_transfer(sc, nbytes=200_000, sndbuf=128 * 1024, cfg=cfg,
                     invariants=True, max_sim_s=120)


def test_unmutated_runs_stay_green():
    """Control: the same scenarios pass with the real implementation."""
    sc = build_chaos(3, 10e6, seed=3, horizon_us=1_000_000)
    res = run_transfer(sc, nbytes=250_000, sndbuf=128 * 1024,
                       cfg=chaos_config(), invariants=True, max_sim_s=120)
    assert res.surviving_ok

    cfg = replace(HRMCConfig(), local_recovery=True,
                  repair_cache_bytes=32 * 1024)
    sc = build_lan(2, 10e6, seed=0)
    res = run_transfer(sc, nbytes=200_000, sndbuf=128 * 1024, cfg=cfg,
                       invariants=True, max_sim_s=120)
    assert res.ok
