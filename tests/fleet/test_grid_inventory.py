"""Grid planning machinery + the experiment inventory drift gate."""

import os

import pytest

from repro.fleet.grid import PROBE, Grid
from repro.fleet.spec import RunSpec
from repro.harness.experiments import (EXPERIMENTS, INVENTORY,
                                       inventory_markdown,
                                       plan_experiment)

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def test_probe_absorbs_report_shaped_code():
    assert PROBE == 0
    assert PROBE.sender_stats.naks_rcvd == 0
    assert round(PROBE.throughput_mbps, 2) == 0
    assert PROBE.a + PROBE.b * 2 == 0
    assert list(PROBE.obs_tables) == []
    assert not PROBE


def test_grid_planning_collects_and_dedupes():
    grid = Grid()
    a = RunSpec.lan(1, 10e6, seed=1, nbytes=1000)
    b = RunSpec.lan(2, 10e6, seed=1, nbytes=1000)
    assert grid.planning
    assert grid.run(a) is PROBE
    grid.run(b)
    grid.run(a)  # duplicate: registered once
    assert [s.content_hash() for s in grid.specs] == \
        [a.content_hash(), b.content_hash()]


def test_grid_report_pass_serves_results_and_rejects_strays():
    a = RunSpec.lan(1, 10e6, seed=1, nbytes=1000)
    b = RunSpec.lan(2, 10e6, seed=1, nbytes=1000)
    sentinel = object()
    grid = Grid({a.content_hash(): sentinel})
    assert not grid.planning
    assert grid.run(a) is sentinel
    with pytest.raises(KeyError, match="no fleet result"):
        grid.run(b)


def test_every_experiment_plans_without_executing():
    for exp_id in EXPERIMENTS:
        specs = plan_experiment(exp_id)
        hashes = [s.content_hash() for s in specs]
        assert len(hashes) == len(set(hashes)), exp_id
    with pytest.raises(KeyError, match="unknown experiment"):
        plan_experiment("fig99")


def test_inventory_covers_exactly_the_registry():
    assert set(INVENTORY) == set(EXPERIMENTS)


def test_inventory_bench_files_exist():
    for info in INVENTORY.values():
        path = os.path.join(REPO, info.bench)
        assert os.path.isfile(path), \
            f"{info.exp_id}: bench file {info.bench} does not exist"


def test_experiments_md_inventory_is_not_drifted():
    """EXPERIMENTS.md embeds ``inventory_markdown()`` verbatim -- the
    CLI ``--list``, the docs and this test share one source of truth."""
    with open(os.path.join(REPO, "EXPERIMENTS.md")) as fh:
        doc = fh.read()
    table = inventory_markdown()
    assert table in doc, (
        "EXPERIMENTS.md per-experiment inventory is out of date; "
        "regenerate it with: PYTHONPATH=src python -c "
        '"from repro.harness.experiments import inventory_markdown; '
        'print(inventory_markdown())"')
