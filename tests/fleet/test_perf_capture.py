"""Opt-in per-job perf capture: RunSpec(perf=True) carries the
event-class payload across the worker boundary."""

import json

from repro.fleet.spec import RunSpec
from repro.fleet.summary import RunSummary
from repro.fleet.worker import execute_spec, run_spec
from repro.obs.perf import EVENT_CLASSES


def _spec(**kw):
    return RunSpec.lan(2, 100e6, seed=7, nbytes=150_000,
                       sndbuf=128 * 1024, **kw)


def test_perf_capture_off_by_default():
    summary = run_spec(_spec())
    assert summary.ok
    assert summary.perf == {}


def test_perf_capture_collects_tax_table():
    summary = run_spec(_spec(perf=True))
    assert summary.ok
    perf = summary.perf
    assert perf["events"] == summary.sim_events
    assert perf["coverage"] >= 0.95
    assert set(perf["classes"]) <= set(EVENT_CLASSES)
    # stack sampling is off in fleet capture (summaries stay small)
    assert "flame_samples" not in perf


def test_perf_payload_survives_worker_boundary():
    wire = execute_spec(_spec(perf=True).to_dict())
    # JSON-canonical all the way down
    assert wire == json.loads(json.dumps(wire, sort_keys=True))
    summary = RunSummary.from_dict(wire)
    assert summary.perf["coverage"] >= 0.95
    assert summary.to_dict()["perf"] == wire["perf"]


def test_perf_flag_changes_spec_identity():
    assert _spec().content_hash() != _spec(perf=True).content_hash()
