"""Fleet executor: determinism, resume, retries, timeouts."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.fleet import Fleet, FleetError
from repro.fleet.spec import RunSpec


def _grid(n: int = 4) -> list[RunSpec]:
    return [RunSpec.lan(1, 10e6, seed=s, nbytes=60_000)
            for s in range(1, n + 1)]


def _dicts(results) -> list[dict]:
    return [r.to_dict() for r in results.values()]


def test_serial_parallel_and_warm_are_byte_identical(tmp_path):
    specs = _grid()
    serial = Fleet(workers=1).run_specs(specs)

    cache = str(tmp_path / "c")
    cold_fleet = Fleet(workers=2, cache_dir=cache)
    cold = cold_fleet.run_specs(specs)
    assert cold_fleet.stats.executed == len(specs)

    warm_fleet = Fleet(workers=2, cache_dir=cache)
    warm = warm_fleet.run_specs(specs)
    assert warm_fleet.stats.cached == len(specs)
    assert warm_fleet.stats.executed == 0

    assert list(serial) == list(cold) == list(warm)  # submission order
    assert _dicts(serial) == _dicts(cold) == _dicts(warm)


def test_duplicate_specs_run_once(tmp_path):
    specs = _grid(2)
    fleet = Fleet(workers=1, cache_dir=str(tmp_path / "c"))
    results = fleet.run_specs(specs + specs)
    assert fleet.stats.runs == 2
    assert fleet.stats.executed == 2
    assert len(results) == 2


def test_resume_executes_exactly_the_missing_cells(tmp_path):
    """An interrupted sweep leaves a partial cache; re-running executes
    only the cells that are not there yet."""
    specs = _grid(4)
    cache = str(tmp_path / "c")

    first = Fleet(workers=1, cache_dir=cache)
    first.run_specs(specs[:2])  # "interrupted" after two cells

    resumed = Fleet(workers=1, cache_dir=cache)
    results = resumed.run_specs(specs)
    assert resumed.stats.cached == 2
    assert resumed.stats.executed == 2
    assert list(results) == [s.content_hash() for s in specs]


def test_resume_after_sigkill(tmp_path):
    """SIGKILL a sweep mid-flight; the atomic store never holds a
    half-written cell, and the re-run completes exactly the rest."""
    cache = str(tmp_path / "c")
    specs = _grid(6)
    prog = (
        "import sys\n"
        "sys.path.insert(0, 'src')\n"
        "from repro.fleet import Fleet\n"
        "from repro.fleet.spec import RunSpec\n"
        "specs = [RunSpec.lan(1, 10e6, seed=s, nbytes=60_000)\n"
        "         for s in range(1, 7)]\n"
        f"Fleet(workers=1, cache_dir={cache!r}).run_specs(specs)\n"
        "print('FULL-SWEEP-DONE')\n"
    )
    repo = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    proc = subprocess.Popen([sys.executable, "-c", prog], cwd=repo,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL)
    # wait for at least one committed cell, then kill -9
    deadline = time.time() + 60
    def cells():
        return [f for _, _, fs in os.walk(cache) for f in fs
                if f.endswith(".json") and not f.startswith(".tmp-")]
    while time.time() < deadline and not cells():
        if proc.poll() is not None:
            break
        time.sleep(0.02)
    if proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=60)

    done_before = len(cells())
    assert done_before >= 1  # something committed before the kill

    fleet = Fleet(workers=1, cache_dir=cache)
    results = fleet.run_specs(specs)
    assert len(results) == len(specs)
    assert fleet.stats.cached == done_before
    assert fleet.stats.executed == len(specs) - done_before
    assert fleet.stats.store.get("corrupt", 0) == 0


def test_refresh_re_executes_and_overwrites(tmp_path):
    specs = _grid(2)
    cache = str(tmp_path / "c")
    Fleet(workers=1, cache_dir=cache).run_specs(specs)
    fleet = Fleet(workers=1, cache_dir=cache, refresh=True)
    fleet.run_specs(specs)
    assert fleet.stats.executed == 2 and fleet.stats.cached == 0

    warm = Fleet(workers=1, cache_dir=cache)
    warm.run_specs(specs)
    assert warm.stats.cached == 2


@pytest.mark.parametrize("workers", [1, 2])
def test_failing_job_raises_fleet_error_after_retries(tmp_path, workers):
    bad = RunSpec(scenario="wan",
                  scenario_params={"bandwidth_bps": 10e6, "seed": 1,
                                   "groups": ["Z"]},  # unknown group
                  nbytes=1000)
    good = _grid(1)
    fleet = Fleet(workers=workers, cache_dir=str(tmp_path / "c"),
                  retries=1, backoff_s=0.01)
    with pytest.raises(FleetError, match="unknown characteristic group"):
        fleet.run_specs(good + [bad])
    assert fleet.stats.failed == 1
    assert fleet.stats.retries == 1
    # the sweep still completed (and cached) the good cell
    assert fleet.stats.executed == 1

    # non-strict mode reports partial results instead of raising
    fleet2 = Fleet(workers=workers, cache_dir=str(tmp_path / "c"),
                   retries=0)
    results = fleet2.run_specs(good + [bad], strict=False)
    assert len(results) == 1
    assert fleet2.stats.cached == 1


def test_bad_config_delta_fails_cleanly(tmp_path):
    bad = RunSpec.lan(1, 10e6, seed=1, nbytes=1000,
                      cfg={"no_such_knob": True})
    fleet = Fleet(workers=1, retries=0)
    with pytest.raises(FleetError, match="bad config delta"):
        fleet.run_specs([bad])


def test_job_timeout_is_a_bounded_failure():
    # 8 MB at 10 Mbps takes ~seconds of wall clock; a 50 ms budget
    # must trip the in-worker alarm, not hang the fleet
    slow = RunSpec.lan(3, 10e6, seed=1, nbytes=8_000_000)
    fleet = Fleet(workers=1, timeout_s=0.05, retries=0)
    with pytest.raises(FleetError, match="wall clock"):
        fleet.run_specs([slow])
    assert fleet.stats.failed == 1
