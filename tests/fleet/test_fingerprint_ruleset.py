"""The simlint rule-set version is a protocol-code-fingerprint input.

Cached fleet results were computed from a tree the analyzer of that era
accepted.  A rule-set bump redefines acceptability, so it must
invalidate the cache (no stale-serving of results the current rules
would reject) -- while pure analyzer refactors, like fleet-layer edits,
must NOT churn it.
"""

from __future__ import annotations

import os
import shutil

import repro
from repro.analysis.version import RULESET_VERSION
from repro.fleet import fingerprint as fp_mod
from repro.fleet.fingerprint import code_fingerprint


def _copy_tree(tmp_path) -> str:
    tree = str(tmp_path / "repro")
    shutil.copytree(os.path.dirname(repro.__file__), tree)
    return tree


def test_ruleset_version_is_a_fingerprint_input(tmp_path, monkeypatch):
    tree = _copy_tree(tmp_path)
    before = code_fingerprint(tree)
    monkeypatch.setattr(fp_mod, "RULESET_VERSION",
                        RULESET_VERSION + ".bumped")
    assert code_fingerprint(tree) != before
    monkeypatch.setattr(fp_mod, "RULESET_VERSION", RULESET_VERSION)
    assert code_fingerprint(tree) == before  # and it round-trips


def test_analyzer_internal_edits_do_not_churn_the_cache(tmp_path):
    tree = _copy_tree(tmp_path)
    before = code_fingerprint(tree)
    with open(os.path.join(tree, "analysis", "runner.py"), "a") as fh:
        fh.write("\n# analyzer refactor, same rule set\n")
    assert code_fingerprint(tree) == before


def test_protocol_edits_still_dominate(tmp_path):
    """Sanity: the ruleset input did not weaken source tracking."""
    tree = _copy_tree(tmp_path)
    before = code_fingerprint(tree)
    with open(os.path.join(tree, "net", "packet.py"), "a") as fh:
        fh.write("\n# protocol tweak\n")
    assert code_fingerprint(tree) != before
