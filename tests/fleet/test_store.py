"""Cache correctness: invalidation, corruption, resume semantics."""

import json
import os
import shutil

from repro.fleet.fingerprint import code_fingerprint
from repro.fleet.spec import RunSpec
from repro.fleet.store import ResultStore
from repro.fleet.worker import execute_spec


def _spec(seed: int = 1) -> RunSpec:
    return RunSpec.lan(1, 10e6, seed=seed, nbytes=50_000)


def _summary(spec: RunSpec) -> dict:
    return execute_spec(spec.to_dict())


def test_put_get_round_trip(tmp_path):
    store = ResultStore(str(tmp_path / "c"), "fp-a")
    spec = _spec()
    summary = _summary(spec)
    store.put(spec, summary)
    got = store.get(spec)
    assert got is not None
    assert got.to_dict() == summary
    assert store.stats.hits == 1 and store.stats.writes == 1


def test_fingerprint_mismatch_counts_as_invalidation(tmp_path):
    cache = str(tmp_path / "c")
    spec = _spec()
    old = ResultStore(cache, "fp-old")
    old.put(spec, _summary(spec))
    new = ResultStore(cache, "fp-new")
    assert new.get(spec) is None
    assert new.stats.invalidated == 1
    assert new.stats.misses == 0 and new.stats.corrupt == 0


def test_fingerprint_tracks_protocol_source_edits(tmp_path):
    """Editing anything under the protocol tree changes the
    fingerprint; editing the fleet itself does not."""
    import repro
    src = os.path.dirname(repro.__file__)
    tree = str(tmp_path / "repro")
    shutil.copytree(src, tree)

    before = code_fingerprint(tree)
    assert before == code_fingerprint(tree)  # deterministic

    with open(os.path.join(tree, "core", "config.py"), "a") as fh:
        fh.write("\n# tweak\n")
    after = code_fingerprint(tree)
    assert after != before

    with open(os.path.join(tree, "fleet", "store.py"), "a") as fh:
        fh.write("\n# cache-layer tweak\n")
    assert code_fingerprint(tree) == after


def test_corrupt_entry_is_a_miss_with_one_line_warning(tmp_path, capsys):
    cache = str(tmp_path / "c")
    store = ResultStore(cache, "fp")
    spec = _spec()
    store.put(spec, _summary(spec))

    path = store.path_for(spec.content_hash())
    with open(path, "w") as fh:
        fh.write('{"format": 1, "summ')  # truncated mid-write

    fresh = ResultStore(cache, "fp")
    assert fresh.get(spec) is None
    assert fresh.stats.corrupt == 1
    err = capsys.readouterr().err
    lines = [ln for ln in err.splitlines() if ln]
    assert len(lines) == 1
    assert "corrupt entry" in lines[0] and "miss" in lines[0]


def test_malformed_summary_is_corrupt_not_crash(tmp_path, capsys):
    cache = str(tmp_path / "c")
    store = ResultStore(cache, "fp")
    spec = _spec()
    store.put(spec, _summary(spec))
    path = store.path_for(spec.content_hash())
    entry = json.load(open(path))
    del entry["summary"]["protocol"]
    with open(path, "w") as fh:
        json.dump(entry, fh)
    fresh = ResultStore(cache, "fp")
    assert fresh.get(spec) is None
    assert fresh.stats.corrupt == 1
    assert "corrupt entry" in capsys.readouterr().err


def test_status_and_prune(tmp_path, capsys):
    cache = str(tmp_path / "c")
    cur = ResultStore(cache, "fp-now")
    stale = ResultStore(cache, "fp-old")
    s1, s2, s3 = _spec(1), _spec(2), _spec(3)
    cur.put(s1, _summary(s1))
    stale.put(s2, _summary(s2))
    cur.put(s3, _summary(s3))
    with open(cur.path_for(s3.content_hash()), "w") as fh:
        fh.write("not json")

    st = cur.status()
    assert (st.entries, st.fresh, st.stale, st.corrupt) == (3, 1, 1, 1)
    assert st.by_scenario == {"lan": 2}
    assert st.total_bytes > 0

    removed = ResultStore(cache, "fp-now").prune()
    assert removed == 2  # the stale one and the corrupt one
    st = ResultStore(cache, "fp-now").status()
    assert (st.entries, st.fresh, st.stale, st.corrupt) == (1, 1, 0, 0)
    capsys.readouterr()  # swallow the corruption warnings
