"""RunSpec identity: canonical encoding, hashing, round-trips."""

import json
import subprocess
import sys

import pytest

from repro.fleet.spec import SPEC_VERSION, RunSpec


def _spec() -> RunSpec:
    return RunSpec.wan(test=2, receivers=10, bandwidth_bps=10e6, seed=11,
                       nbytes=1_000_000, sndbuf=256 * 1024,
                       cfg={"minbuf_rtts": 5})


def test_hash_is_stable_within_process():
    assert _spec().content_hash() == _spec().content_hash()


def test_hash_ignores_cfg_key_order():
    a = RunSpec.lan(2, 10e6, seed=1, nbytes=1000,
                    cfg={"a": 1, "b": 2})
    b = RunSpec.lan(2, 10e6, seed=1, nbytes=1000,
                    cfg={"b": 2, "a": 1})
    assert a.content_hash() == b.content_hash()


def test_hash_changes_with_every_field():
    base = _spec()
    variants = [
        RunSpec.wan(test=3, receivers=10, bandwidth_bps=10e6, seed=11,
                    nbytes=1_000_000, sndbuf=256 * 1024,
                    cfg={"minbuf_rtts": 5}),
        RunSpec.wan(test=2, receivers=10, bandwidth_bps=10e6, seed=12,
                    nbytes=1_000_000, sndbuf=256 * 1024,
                    cfg={"minbuf_rtts": 5}),
        RunSpec.wan(test=2, receivers=10, bandwidth_bps=10e6, seed=11,
                    nbytes=2_000_000, sndbuf=256 * 1024,
                    cfg={"minbuf_rtts": 5}),
        RunSpec.wan(test=2, receivers=10, bandwidth_bps=10e6, seed=11,
                    nbytes=1_000_000, sndbuf=512 * 1024,
                    cfg={"minbuf_rtts": 5}),
        RunSpec.wan(test=2, receivers=10, bandwidth_bps=10e6, seed=11,
                    nbytes=1_000_000, sndbuf=256 * 1024,
                    cfg={"minbuf_rtts": 6}),
    ]
    hashes = {base.content_hash()} | {v.content_hash() for v in variants}
    assert len(hashes) == 1 + len(variants)


def test_hash_is_stable_across_processes():
    """blake2b of canonical JSON must not depend on interpreter state
    (hash randomization, dict order, import order)."""
    spec = _spec()
    prog = (
        "import json,sys\n"
        "sys.path.insert(0, 'src')\n"
        "from repro.fleet.spec import RunSpec\n"
        f"spec = RunSpec.from_dict(json.loads({spec.canonical_json()!r}))\n"
        "print(spec.content_hash())\n"
    )
    outs = set()
    for seed in ("0", "1", "random"):
        proc = subprocess.run(
            [sys.executable, "-c", prog], capture_output=True, text=True,
            env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__)
                    .resolve().parents[2]),
            timeout=60)
        assert proc.returncode == 0, proc.stderr
        outs.add(proc.stdout.strip())
    assert outs == {spec.content_hash()}


def test_round_trip_preserves_identity():
    spec = _spec()
    again = RunSpec.from_dict(json.loads(spec.canonical_json()))
    assert again == spec
    assert again.content_hash() == spec.content_hash()


def test_from_dict_rejects_unknown_fields_and_versions():
    d = _spec().to_dict()
    with pytest.raises(ValueError, match="version"):
        RunSpec.from_dict(dict(d, version=SPEC_VERSION + 1))
    with pytest.raises(ValueError, match="unknown RunSpec fields"):
        RunSpec.from_dict(dict(d, surprise=1))


def test_wan_needs_exactly_one_of_groups_or_test():
    with pytest.raises(ValueError):
        RunSpec.wan(bandwidth_bps=10e6, seed=1, nbytes=1000)
    with pytest.raises(ValueError):
        RunSpec.wan(bandwidth_bps=10e6, seed=1, nbytes=1000,
                    groups=["A"], test=1, receivers=3)


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        RunSpec(scenario="moon", scenario_params={}, nbytes=1)
