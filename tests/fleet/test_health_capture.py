"""Opt-in per-job health capture: RunSpec(health=True) carries the
compact protocol-health payload across the worker boundary."""

import json

from repro.fleet.spec import RunSpec
from repro.fleet.summary import RunSummary
from repro.fleet.worker import execute_spec, run_spec


def _lan(**kw):
    return RunSpec.lan(2, 100e6, seed=7, nbytes=150_000,
                       sndbuf=128 * 1024, **kw)


def _wan(**kw):
    return RunSpec.wan(test=2, receivers=3, bandwidth_bps=10e6, seed=21,
                       nbytes=150_000, sndbuf=128 * 1024,
                       max_sim_s=300.0, **kw)


def test_health_capture_off_by_default():
    summary = run_spec(_lan())
    assert summary.ok
    assert summary.health == {}


def test_health_capture_collects_payload():
    summary = run_spec(_wan(health=True))
    assert summary.ok
    health = summary.health
    assert health["group_size"] == 3
    assert health["suppression"]["naks_sent"] > 0, "seed 21 is lossy"
    # the payload agrees with the counters the summary already carries
    assert health["implosion"]["naks_at_sender"] == \
        summary.sender_stats.naks_rcvd
    assert health["suppression"]["naks_sent"] == \
        summary.receiver_stats.naks_sent


def test_health_payload_survives_worker_boundary():
    wire = execute_spec(_wan(health=True).to_dict())
    assert wire == json.loads(json.dumps(wire, sort_keys=True))
    summary = RunSummary.from_dict(wire)
    assert summary.health["group_size"] == 3
    assert summary.to_dict()["health"] == wire["health"]


def test_health_flag_changes_spec_identity():
    """health=True runs schedule identically but report differently;
    the cache must not serve a bare run for a health-on spec."""
    assert _lan().content_hash() != _lan(health=True).content_hash()
    assert "health" in _lan(health=True).to_dict()


def test_health_spec_round_trips():
    spec = _wan(health=True)
    assert RunSpec.from_dict(spec.to_dict()) == spec
