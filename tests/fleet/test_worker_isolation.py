"""Worker hygiene: many jobs in one process must not contaminate each
other.  The worker rebuilds the whole world from the spec, and nothing
under ``src/repro`` may carry mutable module-global state between runs
(packet ids are allocated per-Simulator since PR 4)."""

from repro.fleet.spec import RunSpec
from repro.fleet.worker import execute_spec


def _lan(seed: int) -> dict:
    return RunSpec.lan(2, 10e6, seed=seed, nbytes=80_000).to_dict()


def _chaos() -> dict:
    return RunSpec.chaos(3, 10e6, seed=3, horizon_us=500_000,
                         nbytes=60_000, invariants=True,
                         cfg={"member_timeout_us": 2_000_000,
                              "member_timeout_probes": 4}).to_dict()


def test_same_spec_twice_in_one_process_is_identical():
    assert execute_spec(_lan(1)) == execute_spec(_lan(1))


def test_interleaved_jobs_do_not_contaminate():
    """A-B-A in one process: the third run must equal the first even
    though a different world (including a fault-injected one) ran in
    between."""
    first = execute_spec(_lan(1))
    # a different world: more receivers, more data (a loss-free LAN is
    # seed-insensitive, so vary the shape, not just the seed)
    other = execute_spec(RunSpec.lan(3, 10e6, seed=2,
                                     nbytes=120_000).to_dict())
    chaos = execute_spec(_chaos())
    again = execute_spec(_lan(1))
    assert again == first
    assert other != first
    assert chaos["fault_events"] >= 0

    # and the cross-check: the chaos run replays identically too
    assert execute_spec(_chaos()) == chaos


def test_packet_ids_are_per_simulator():
    """Packet ids restart for every run: the summaries above would
    still match with a global counter (ids don't reach the summary),
    so pin the mechanism itself."""
    from repro.sim.engine import Simulator

    a, b = Simulator(), Simulator()
    assert [a.new_packet_id() for _ in range(3)] == [1, 2, 3]
    assert b.new_packet_id() == 1  # not 4: no process-global sequence
